(* Deterministic, seeded fault injection.  See faultinject.mli for
   the SPEC grammar.  Decisions are pure functions of
   (point, label, per-label hit index[, seed]), never of global
   ordering, so parallel == sequential holds under injection. *)

type clause = {
  point : string;
  substr : string option;  (* label must contain this *)
  nth : int option;        (* fire only on the Nth hit per label *)
  pct : int option;        (* fire on pct% of hits *)
  seed : int;
}

type t = {
  clauses : clause list;
  spec : string;                             (* canonical rendering *)
  lock : Mutex.t;
  counts : (string * string, int) Hashtbl.t; (* (point,label) -> hits *)
}

let points =
  [ "parse"; "compile"; "profile"; "rewrite"; "harden"; "cache"; "verify";
    "run"; "io" ]

let make clauses spec =
  { clauses; spec; lock = Mutex.create (); counts = Hashtbl.create 16 }

let none = make [] "none"
let is_none t = t.clauses = []
let to_string t = t.spec

let parse_clause (s : string) : (clause, string) result =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  (* split off %PCT[~SEED], then @N, then :SUBSTR *)
  let cut c str =
    match String.index_opt str c with
    | None -> (str, None)
    | Some i ->
      ( String.sub str 0 i,
        Some (String.sub str (i + 1) (String.length str - i - 1)) )
  in
  let s, pct_part = cut '%' s in
  let s, nth_part = cut '@' s in
  let point, substr = cut ':' s in
  let int_of what = function
    | None -> Ok None
    | Some x -> (
      match int_of_string_opt x with
      | Some v when v > 0 -> Ok (Some v)
      | _ -> err "fault spec: bad %s %S" what x)
  in
  if not (List.mem point points) then
    err "fault spec: unknown point %S (valid: %s)" point
      (String.concat "|" points)
  else
    let pct_part, seed_part =
      match pct_part with
      | None -> (None, None)
      | Some p ->
        let p, sd = cut '~' p in
        (Some p, sd)
    in
    match (int_of "count" nth_part, int_of "percentage" pct_part,
           int_of "seed" seed_part)
    with
    | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
    | Ok nth, Ok pct, Ok seed ->
      (match pct with
      | Some p when p > 100 -> err "fault spec: percentage %d > 100" p
      | _ ->
        Ok
          {
            point;
            substr = (match substr with Some "" -> None | s -> s);
            nth;
            pct;
            seed = Option.value seed ~default:0;
          })

let parse (spec : string) : (t, string) result =
  let spec = String.trim spec in
  if spec = "" || spec = "none" then Ok none
  else
    let rec go acc = function
      | [] -> Ok (make (List.rev acc) spec)
      | c :: rest -> (
        match parse_clause (String.trim c) with
        | Ok cl -> go (cl :: acc) rest
        | Error e -> Error e)
    in
    go [] (String.split_on_char ',' spec)

let of_env () =
  match Sys.getenv_opt "REDFAT_FAULT" with
  | None | Some "" -> none
  | Some spec -> (
    match parse spec with
    | Ok t -> t
    | Error e ->
      Fault.fail (Fault.Input { what = "script"; detail = "REDFAT_FAULT: " ^ e }))

(* splitmix-style avalanche: the pct decision for hit k of (point,
   label) under seed — pure, order-independent *)
let decide_pct ~seed ~point ~label ~k ~pct =
  let h = ref (Hashtbl.hash (seed, point, label, k) land 0x3FFFFFFF) in
  h := !h * 0x85ebca6b land 0x3FFFFFFF;
  h := (!h lxor (!h lsr 13)) * 0xc2b2ae35 land 0x3FFFFFFF;
  !h mod 100 < pct

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* the canonical typed fault for an injection point *)
let fault_for ~point ~label : exn =
  let detail = Printf.sprintf "injected at %s (%s)" point label in
  let kind : Fault.kind =
    match point with
    | "parse" -> Parse { what = "relf"; detail }
    | "compile" -> Parse { what = "source"; detail }
    | "profile" -> Run { what = "profile"; detail }
    | "rewrite" -> Rewrite { what = "site"; site = None; detail }
    | "harden" -> Rewrite { what = "abort"; site = None; detail }
    | "cache" -> Cache { what = "io"; key = label; detail }
    | "verify" -> Verify { unaccounted = 0; detail }
    | "run" -> Run { what = "fault"; detail }
    | "io" -> Io { what = "read"; path = label; detail }
    | _ -> Run { what = "fault"; detail }
  in
  Fault.Fault (Fault.v kind)

let hook t ~point ~label =
  if t.clauses <> [] then begin
    let matching =
      List.filter
        (fun c ->
          c.point = point
          && match c.substr with None -> true | Some s -> contains label s)
        t.clauses
    in
    if matching <> [] then begin
      Mutex.lock t.lock;
      let k = 1 + Option.value (Hashtbl.find_opt t.counts (point, label)) ~default:0 in
      Hashtbl.replace t.counts (point, label) k;
      Mutex.unlock t.lock;
      let fires c =
        (match c.nth with None -> true | Some n -> k = n)
        && match c.pct with
           | None -> true
           | Some pct -> decide_pct ~seed:c.seed ~point ~label ~k ~pct
      in
      if List.exists fires matching then raise (fault_for ~point ~label)
    end
  end

let hook_fn t ~label =
  if is_none t then None
  else
    Some
      (fun ~stage ~site ->
        ignore stage;
        hook t ~point:"rewrite"
          ~label:(Printf.sprintf "%s/site:%x" label site))
