module Rw = Redfat.Rewrite

type t = {
  pool : Pool.t;
  cache : Cache.t;
  rep : Report.t;
  strict : bool;
  inject : Faultinject.t;
  mutable closed : bool;
}

let create ?(jobs = 1) ?(cache = true) ?cache_dir ?(strict = false)
    ?(inject = Faultinject.none) () =
  let rep = Report.create () in
  let obs = Report.obs rep in
  let t =
    {
      pool = Pool.create ~jobs ~obs ();
      cache =
        Cache.create ~enabled:cache ?dir:cache_dir
          ~notify:(fun ev -> Obs.add obs ("cache." ^ ev))
          ();
      rep;
      strict;
      inject;
      closed = false;
    }
  in
  Report.set_jobs t.rep (max 1 jobs);
  at_exit (fun () -> if not t.closed then Pool.close t.pool);
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    Pool.close t.pool
  end

let jobs t = Pool.jobs t.pool
let report t = t.rep
let obs t = Report.obs t.rep
let cache_stats t = Cache.stats t.cache
let cache_enabled t = Cache.enabled t.cache
let strict t = t.strict
let inject t = t.inject
let map t f xs = Pool.map_list t.pool f xs

(* --- the fault boundary --------------------------------------------- *)

(* the target a worker domain is currently processing: the provenance
   attached to faults and the label injection clauses match against.
   Domain-local, so parallel workers never race on it. *)
let target_key : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "-")

let hook t point =
  Faultinject.hook t.inject ~point ~label:(Domain.DLS.get target_key)

let record_fault t (f : Fault.t) =
  Report.add_fault t.rep f;
  Obs.add (obs t) ("fault." ^ Fault.code f)

let protect t ~target f =
  let saved = Domain.DLS.get target_key in
  Domain.DLS.set target_key target;
  let finish r = Domain.DLS.set target_key saved; r in
  let rec go attempt =
    match f () with
    | v -> finish (Ok v)
    | exception e ->
      let flt = Fault.of_exn ~target e in
      (* one bounded retry for transient cache/IO faults: the state
         they depend on (a damaged artifact now deleted, a racing
         writer now done) can differ on the second attempt *)
      if Fault.is_transient flt && attempt < 2 then go (attempt + 1)
      else begin
        record_fault t flt;
        if t.strict then (finish (); raise (Fault.Fault flt))
        else finish (Error flt)
      end
  in
  go 1

let map_targets t f targets =
  Pool.map_list t.pool
    (fun tgt -> protect t ~target:tgt (fun () -> f tgt))
    targets

let load_relf t path =
  hook t "io";
  let data =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg ->
      Fault.fail (Fault.Io { what = "read"; path; detail = msg })
  in
  hook t "parse";
  let bin = Binfmt.Relf.parse data in
  (match Binfmt.Relf.find_section bin ".text" with
  | Some s when String.length s.bytes > 0 -> ()
  | Some _ ->
    Fault.fail (Fault.Parse { what = "nocode"; detail = path ^ ": empty .text section" })
  | None ->
    Fault.fail (Fault.Parse { what = "nocode"; detail = path ^ ": no .text section" }));
  bin

(* --- cached, timed stage primitives --------------------------------- *)

(* injected runs must never reuse (or pollute) clean-run artifacts, so
   the canonical injection spec is part of every cache key; the harden
   key also carries the fault policy, which changes what a faulting
   rewrite produces *)
let inject_key t = Faultinject.to_string t.inject

let memo t ~key compute =
  hook t "cache";
  Cache.memo t.cache ~key compute

let compile t (prog : Minic.Ast.program) =
  Report.timed t.rep "compile" @@ fun () ->
  hook t "compile";
  let key =
    Cache.key ~kind:"compile" [ Marshal.to_string prog []; inject_key t ]
  in
  memo t ~key (fun () -> Minic.Codegen.compile prog)

(* the whole-binary harden path: one artifact keyed by the serialized
   input *)
let harden_monolithic t ?tramp_base ~opts bin =
  let key =
    Cache.key ~kind:"harden"
      [
        Binfmt.Relf.serialize bin;
        Rw.options_key opts;
        string_of_int (Option.value tramp_base ~default:(-1));
        inject_key t;
        (if t.strict then "abort" else "degrade");
      ]
  in
  memo t ~key (fun () ->
      Rw.rewrite ?tramp_base ~obs:(obs t)
        ~on_fault:(if t.strict then Rw.Abort else Rw.Degrade)
        ?fault_hook:
          (Faultinject.hook_fn t.inject ~label:(Domain.DLS.get target_key))
        opts bin)

(* the function-granular harden path: each slice is rewritten with a
   chained trampoline base and cached by its own content digest, so a
   one-function edit re-plans exactly the functions whose (base,
   address, bytes) triple changed; the spliced result is byte-identical
   to [harden_monolithic]'s (see Shard's contract and the shard parity
   tests).  A binary-level manifest keyed by every slice digest serves
   the fully-unchanged case without touching per-function artifacts. *)
let harden_sharded t ~base ~opts ~fixed bin slices =
  let o = obs t in
  let fault_hook =
    Faultinject.hook_fn t.inject ~label:(Domain.DLS.get target_key)
  in
  (* sequential: slice k's cache key depends on the chained base,
     i.e. on the trampoline sizes of slices 0..k-1.  Slices sharing
     (base, address, bytes) alias on purpose: identical functions at
     identical placements rewrite identically even across binaries *)
  let next_base = ref base in
  let parts =
    List.map
      (fun (sl : Redfat.Shard.slice) ->
        let fkey =
          Cache.key ~kind:"fnart"
            (fixed
            @ [
                string_of_int !next_base;
                string_of_int sl.sl_addr;
                sl.sl_digest;
              ])
        in
        let part =
          match Cache.find_opt t.cache ~key:fkey with
          | Some (p : Rw.t) ->
            Obs.add o "harden.fn.hit";
            p
          | None ->
            Obs.add o "harden.fn.miss";
            let p =
              Rw.rewrite ~tramp_base:!next_base ~obs:o
                ~on_fault:(if t.strict then Rw.Abort else Rw.Degrade)
                ?fault_hook opts
                (Redfat.Shard.slice_binary bin sl)
            in
            Cache.put t.cache ~key:fkey p;
            p
        in
        next_base := !next_base + part.Rw.stats.tramp_bytes;
        part)
      slices
  in
  Redfat.Shard.assemble ~binary:bin ~tramp_base:base parts

let harden t ?tramp_base ?(opts = Rw.optimized) bin =
  Report.timed t.rep "harden" @@ fun () ->
  hook t "harden";
  if not (Cache.enabled t.cache) then
    (* without a cache there is nothing to reuse and sharding only
       adds splice work: rewrite whole *)
    harden_monolithic t ?tramp_base ~opts bin
  else begin
    let o = obs t in
    let base = Option.value tramp_base ~default:Rw.default_tramp_base in
    let fixed =
      [
        Rw.options_key opts;
        inject_key t;
        (if t.strict then "abort" else "degrade");
      ]
    in
    (* the manifest is keyed by the whole input, so an unchanged
       binary is served without even sweeping its text; any edit
       misses here and falls through to the per-function tier, where
       every untouched function still hits *)
    let mkey =
      Cache.key ~kind:"manifest"
        (Binfmt.Relf.serialize bin :: string_of_int base :: fixed)
    in
    match Cache.find_opt t.cache ~key:mkey with
    | Some ((r : Rw.t), nfns) ->
      Obs.add o "harden.manifest.hit";
      Obs.add o ~n:nfns "harden.fn.hit";
      r
    | None -> (
      Obs.add o "harden.manifest.miss";
      match Redfat.Shard.slices bin with
      | None ->
        (* not shardable (single function, or an isolation condition
           failed): the whole-binary artifact is the unit of reuse *)
        harden_monolithic t ?tramp_base ~opts bin
      | Some slices ->
        let r = harden_sharded t ~base ~opts ~fixed bin slices in
        Cache.put t.cache ~key:mkey (r, List.length slices);
        r)
  end

let profile t ?max_steps ~test_suite bin =
  let prof = harden t ~opts:Rw.profiling_build bin in
  Report.timed t.rep "profile" @@ fun () ->
  hook t "profile";
  let key =
    Cache.key ~kind:"profile"
      (Binfmt.Relf.serialize bin
      :: inject_key t
      :: (string_of_int (Option.value max_steps ~default:(-1))
         :: List.map
              (fun inputs ->
                String.concat "," (List.map string_of_int inputs))
              test_suite))
  in
  memo t ~key (fun () ->
      map t (Redfat.profile_run ?max_steps prof.Rw.binary) test_suite
      |> Redfat.merge_profiles)

let verify t ?allow bin =
  Report.timed t.rep "verify" @@ fun () ->
  hook t "verify";
  Rw.verify ?allow bin

let run_baseline t ?inputs ?max_steps ?libs bin =
  Report.timed t.rep "run" @@ fun () ->
  hook t "run";
  Redfat.run_baseline ?inputs ?max_steps ?libs bin

let run_hardened t ?options ?profiling ?random ?acct ?inputs ?max_steps ?libs
    bin =
  Report.timed t.rep "run" @@ fun () ->
  hook t "run";
  Redfat.run_hardened ?options ?profiling ?random ?acct ?inputs ?max_steps
    ?libs bin

let run_memcheck t ?inputs ?max_steps bin =
  Report.timed t.rep "run" @@ fun () ->
  hook t "run";
  Redfat.run_memcheck ?inputs ?max_steps bin

let emit_json t ?extra () =
  Report.to_json ~cache:(cache_stats t) ~cache_enabled:(cache_enabled t)
    ?extra t.rep

(* fold a VM check-accounting table into the collector: per-variant
   execution/cycle counters plus per-site distributions, so a trace
   shows where the hardening cycles went *)
let record_vm_acct t (a : Vm.Cpu.acct) =
  let o = obs t in
  if a.Vm.Cpu.acct_full > 0 then
    Obs.add o ~n:a.Vm.Cpu.acct_full "vm.check.full";
  if a.Vm.Cpu.acct_redzone > 0 then
    Obs.add o ~n:a.Vm.Cpu.acct_redzone "vm.check.redzone";
  if a.Vm.Cpu.acct_temporal > 0 then
    Obs.add o ~n:a.Vm.Cpu.acct_temporal "vm.check.temporal";
  if a.Vm.Cpu.acct_cycles > 0 then
    Obs.add o ~n:a.Vm.Cpu.acct_cycles "vm.check.cycles";
  List.iter
    (fun (_site, checks, cycles) ->
      Obs.observe o "vm.site.checks" checks;
      Obs.observe o "vm.site.cycles" cycles)
    (Vm.Cpu.acct_sites a)

let trace_json t = Obs.to_chrome ~process_name:"redfat" (obs t)

(* --- the canonical typed stage chain -------------------------------- *)

type outcome = {
  hard : Redfat.Rewrite.t;
  base : Redfat.run_result;
  hrun : Redfat.hardened_run;
}

let stage_compile t =
  Stage.v ~name:"Compile" ~input:"minic-program" ~output:"relf-binary"
    (fun prog -> compile t prog)

let stage_profile t ~train =
  Stage.v ~name:"Profile" ~input:"relf-binary"
    ~output:"relf-binary * allow-list" (fun bin ->
      (bin, profile t ~test_suite:train bin))

let stage_harden t ?(opts = Rw.optimized) () =
  Stage.v ~name:"Harden" ~input:"relf-binary * allow-list"
    ~output:"relf-binary * hardened-rewrite" (fun (bin, allow) ->
      (bin, harden t ~opts:{ opts with Rw.allowlist = Some allow } bin))

let stage_verify t =
  Stage.v ~name:"Verify" ~input:"relf-binary * hardened-rewrite"
    ~output:"relf-binary * hardened-rewrite" (fun (bin, hard) ->
      (match verify t hard.Rw.binary with
      | Error e -> Fault.fail (Fault.Verify { unaccounted = 0; detail = e })
      | Ok r ->
        if not (Redfat.Verify.ok r) then
          Fault.fail
            (Fault.Verify
               {
                 unaccounted = List.length r.Redfat.Verify.failures;
                 detail =
                   Format.asprintf "%d unaccounted memory accesses@ %a"
                     (List.length r.Redfat.Verify.failures)
                     Redfat.Verify.pp_report r;
               }));
      (bin, hard))

let stage_run t ~inputs =
  Stage.v ~name:"Run" ~input:"relf-binary * hardened-rewrite"
    ~output:"outcome" (fun (bin, hard) ->
      let base, bv = run_baseline t ~inputs bin in
      (match bv with
      | Redfat.Finished _ -> ()
      | v ->
        Fault.fail
          (Fault.Run
             { what = "baseline"; detail = Redfat.verdict_to_string v }));
      let hrun =
        run_hardened t
          ~options:{ Redfat.Runtime.default_options with mode = Log }
          ~inputs hard.Rw.binary
      in
      { hard; base; hrun })

let stage_report t =
  Stage.v ~name:"Report" ~input:"outcome" ~output:"summary"
    (fun { hard; base; hrun } ->
      ignore t;
      let b = Buffer.create 256 in
      Printf.bprintf b "verdict:  %s\n"
        (Redfat.verdict_to_string hrun.Redfat.verdict);
      (* the run stage executes in Log mode, so errors the hardening
         caught (and skipped past) show up here, not as an abort *)
      (match Redfat.Runtime.errors hrun.Redfat.rt with
      | [] -> ()
      | errs ->
        Printf.bprintf b "detected: %d unique memory error(s)\n"
          (List.length errs);
        List.iter
          (fun e ->
            Printf.bprintf b "  - %s\n"
              (Redfat.Runtime.explain hrun.Redfat.rt e))
          errs);
      Printf.bprintf b "backend:  %s\n"
        (Backend.Check_backend.name
           (Redfat.backend_of_binary hard.Rw.binary));
      Printf.bprintf b "baseline: %d cycles\n" base.Redfat.cycles;
      Printf.bprintf b "hardened: %d cycles (overhead %.2fx)\n"
        hrun.Redfat.run.Redfat.cycles
        (float_of_int hrun.Redfat.run.Redfat.cycles
        /. float_of_int base.Redfat.cycles);
      Printf.bprintf b "coverage: %.1f%% of heap accesses primary-checked\n"
        (Redfat.Runtime.coverage_percent hrun.Redfat.rt);
      Printf.bprintf b
        "sites:    %d full, %d redzone-only, %d temporal; %d trampolines"
        hard.Rw.stats.Rw.full_sites hard.Rw.stats.Rw.redzone_sites
        hard.Rw.stats.Rw.temporal_sites hard.Rw.stats.Rw.trampolines;
      Buffer.contents b)
