(** A work-stealing job pool on OCaml 5 domains (stdlib only:
    [Domain]/[Mutex]/[Condition]).

    A pool owns [jobs] worker domains (spawned lazily on the first
    parallel batch).  [map] submits one batch at a time: the task
    indices are block-partitioned into per-worker deques; a worker
    pops from the front of its own deque and, when empty, steals the
    back half of the fullest other deque.  Results are written by
    task index, so the output ordering is deterministic regardless of
    the interleaving.

    [map] called from inside a worker (a nested batch) degrades to
    sequential execution in that worker — nesting never deadlocks. *)

type t

val create : jobs:int -> ?obs:Obs.t -> unit -> t
(** [jobs <= 1] never spawns domains; everything runs inline.
    [obs]: record each task's lifetime as an [Obs] span (category
    ["pool"]) in the executing worker's own buffer. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Deterministic-order parallel map.  If any task raises, the
    exception of the lowest-indexed failing task is re-raised (with
    its backtrace) after the batch drains. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val map_result : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Per-task isolation: a task's exception becomes its own [Error]
    slot (in deterministic input order) and every other task still
    runs — the batch is never cancelled.  Used by the fault-tolerant
    pipeline to build per-target fault records. *)

val close : t -> unit
(** Join all worker domains.  Idempotent; the pool is unusable for
    parallel batches afterwards (maps fall back to sequential). *)
