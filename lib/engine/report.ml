type stage_stat = { mutable calls : int; mutable seconds : float }

type target = {
  tg_name : string;
  tg_cycles : int;
  tg_overheads : (string * float) list;
  tg_counters : (string * int) list;
  tg_wall : float;
}

type t = {
  lock : Mutex.t;
  stages : (string, stage_stat) Hashtbl.t;
  mutable tgs : target list;
  mutable njobs : int;
  t0 : float;
}

let now () = Unix.gettimeofday ()

let create () =
  {
    lock = Mutex.create ();
    stages = Hashtbl.create 8;
    tgs = [];
    njobs = 1;
    t0 = now ();
  }

let set_jobs t n = t.njobs <- n
let jobs t = t.njobs

let record t name dt =
  Mutex.lock t.lock;
  let s =
    match Hashtbl.find_opt t.stages name with
    | Some s -> s
    | None ->
      let s = { calls = 0; seconds = 0.0 } in
      Hashtbl.replace t.stages name s;
      s
  in
  s.calls <- s.calls + 1;
  s.seconds <- s.seconds +. dt;
  Mutex.unlock t.lock

let timed t name f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> record t name (now () -. t0)) f

let add_target t ~name ?(cycles = 0) ?(overheads = []) ?(counters = []) ~wall
    () =
  Mutex.lock t.lock;
  t.tgs <-
    { tg_name = name; tg_cycles = cycles; tg_overheads = overheads;
      tg_counters = counters; tg_wall = wall }
    :: t.tgs;
  Mutex.unlock t.lock

let targets t =
  Mutex.lock t.lock;
  let tgs = t.tgs in
  Mutex.unlock t.lock;
  List.sort (fun a b -> compare a.tg_name b.tg_name) tgs

let stage_summary t =
  Mutex.lock t.lock;
  let rows =
    Hashtbl.fold (fun name s acc -> (name, s.calls, s.seconds) :: acc)
      t.stages []
  in
  Mutex.unlock t.lock;
  List.sort compare rows

let wall t = now () -. t.t0

let pp fmt t =
  Format.fprintf fmt "@[<v>stage        calls   seconds@,";
  List.iter
    (fun (name, calls, secs) ->
      Format.fprintf fmt "%-12s %5d %9.3f@," name calls secs)
    (stage_summary t);
  Format.fprintf fmt "total wall %16.3f@]" (wall t)

(* --- JSON ----------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let to_json ?cache ?(cache_enabled = true) ?(extra = []) t =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  List.iter (fun (k, v) -> add "  %S: %S,\n" k v) extra;
  add "  \"jobs\": %d,\n" t.njobs;
  add "  \"wall_seconds\": %s,\n" (json_float (wall t));
  (match cache with
  | Some (c : Cache.stats) ->
    add
      "  \"cache\": { \"enabled\": %b, \"hits\": %d, \"misses\": %d, \
       \"stores\": %d },\n"
      cache_enabled c.hits c.misses c.stores
  | None -> ());
  add "  \"stages\": {\n";
  let stages = stage_summary t in
  List.iteri
    (fun i (name, calls, secs) ->
      add "    %S: { \"calls\": %d, \"seconds\": %s }%s\n" (escape name)
        calls (json_float secs)
        (if i = List.length stages - 1 then "" else ","))
    stages;
  add "  },\n";
  add "  \"targets\": [\n";
  let tgs = targets t in
  List.iteri
    (fun i tg ->
      add "    { \"name\": %S, \"baseline_cycles\": %d, \"wall_seconds\": %s"
        (escape tg.tg_name) tg.tg_cycles (json_float tg.tg_wall);
      if tg.tg_overheads <> [] then begin
        add ", \"overheads\": { ";
        add "%s"
          (String.concat ", "
             (List.map
                (fun (k, v) -> Printf.sprintf "%S: %s" (escape k) (json_float v))
                tg.tg_overheads));
        add " }"
      end;
      if tg.tg_counters <> [] then begin
        add ", \"counters\": { ";
        add "%s"
          (String.concat ", "
             (List.map
                (fun (k, v) -> Printf.sprintf "%S: %d" (escape k) v)
                tg.tg_counters));
        add " }"
      end;
      add " }%s\n" (if i = List.length tgs - 1 then "" else ","))
    tgs;
  add "  ]\n";
  add "}\n";
  Buffer.contents b
