type target = {
  tg_name : string;
  tg_cycles : int option;
  tg_overheads : (string * float) list;
  tg_counters : (string * int) list;
  tg_wall : float;
}

(* Hot-path recording (spans, counters, histograms) goes through the
   per-domain [Obs] buffers — no shared lock, no contended cache line.
   Only the cold per-target list keeps a mutex (one push per measured
   workload). *)
type t = {
  obs : Obs.t;
  lock : Mutex.t;
  mutable tgs : target list;
  mutable flts : Fault.t list;
  mutable njobs : int;
  t0 : float;
}

let now () = Unix.gettimeofday ()

let create () =
  {
    obs = Obs.create ();
    lock = Mutex.create ();
    tgs = [];
    flts = [];
    njobs = 1;
    t0 = now ();
  }

let obs t = t.obs
let set_jobs t n = t.njobs <- n
let jobs t = t.njobs

let record t name dt =
  Obs.add_span t.obs ~cat:"stage" name ~start:(now () -. dt) ~dur:dt

let timed t name f = Obs.span t.obs ~cat:"stage" name f

let add_target t ~name ?cycles ?(overheads = []) ?(counters = []) ~wall
    () =
  Mutex.lock t.lock;
  t.tgs <-
    { tg_name = name; tg_cycles = cycles; tg_overheads = overheads;
      tg_counters = counters; tg_wall = wall }
    :: t.tgs;
  Mutex.unlock t.lock

let targets t =
  Mutex.lock t.lock;
  let tgs = t.tgs in
  Mutex.unlock t.lock;
  List.sort (fun a b -> compare a.tg_name b.tg_name) tgs

let add_fault t (f : Fault.t) =
  Mutex.lock t.lock;
  t.flts <- f :: t.flts;
  Mutex.unlock t.lock

let faults t =
  Mutex.lock t.lock;
  let fs = t.flts in
  Mutex.unlock t.lock;
  List.sort
    (fun (a : Fault.t) b -> compare (a.target, Fault.code a) (b.target, Fault.code b))
    fs

let stage_summary t = Obs.span_summary ~cat:"stage" t.obs

let wall t = now () -. t.t0

let pp fmt t =
  Format.fprintf fmt "@[<v>stage        calls   seconds@,";
  List.iter
    (fun (name, calls, secs) ->
      Format.fprintf fmt "%-12s %5d %9.3f@," name calls secs)
    (stage_summary t);
  Format.fprintf fmt "total wall %16.3f@]" (wall t)

(* --- JSON ----------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let to_json ?cache ?(cache_enabled = true) ?(extra = []) t =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  List.iter (fun (k, v) -> add "  %S: %S,\n" k v) extra;
  add "  \"jobs\": %d,\n" t.njobs;
  add "  \"wall_seconds\": %s,\n" (json_float (wall t));
  (match cache with
  | Some (c : Cache.stats) ->
    add
      "  \"cache\": { \"enabled\": %b, \"hits\": %d, \"hits_mem\": %d, \
       \"hits_disk\": %d, \"misses\": %d, \"stores\": %d },\n"
      cache_enabled c.hits c.hits_mem c.hits_disk c.misses c.stores
  | None -> ());
  add "  \"stages\": {\n";
  let stages = stage_summary t in
  List.iteri
    (fun i (name, calls, secs) ->
      add "    %S: { \"calls\": %d, \"seconds\": %s }%s\n" (escape name)
        calls (json_float secs)
        (if i = List.length stages - 1 then "" else ","))
    stages;
  add "  },\n";
  (* merged obs counters and histograms: the per-check-kind and cache
     facts the bench-regression gate diffs *)
  add "  \"counters\": {";
  let cs = Obs.counters t.obs in
  List.iteri
    (fun i (name, v) ->
      add "%s %S: %d" (if i = 0 then "" else ",") (escape name) v)
    cs;
  add " },\n";
  (* omitted entirely when no histogrammed path ran: experiments like
     table1 used to emit an empty [{}] object, which readers must
     still accept for old reports *)
  let hs = Obs.histograms t.obs in
  if hs <> [] then begin
    add "  \"histograms\": {\n";
    List.iteri
      (fun i (name, (h : Obs.hist)) ->
        add
          "    %S: { \"count\": %d, \"sum\": %d, \"min\": %d, \"max\": %d, \
           \"buckets\": [%s] }%s\n"
          (escape name) h.Obs.h_count h.Obs.h_sum
          (if h.Obs.h_count = 0 then 0 else h.Obs.h_min)
          (if h.Obs.h_count = 0 then 0 else h.Obs.h_max)
          (String.concat ", "
             (List.map
                (fun (lo, c) -> Printf.sprintf "[%d, %d]" lo c)
                h.Obs.h_buckets))
          (if i = List.length hs - 1 then "" else ","))
      hs;
    add "  },\n"
  end;
  add "  \"targets\": [\n";
  let tgs = targets t in
  List.iteri
    (fun i tg ->
      add "    { \"name\": %S," (escape tg.tg_name);
      (* omitted for synthetic targets (a serve fleet, a rebuild
         night) that have no baseline execution: a literal 0 reads as
         "infinitely fast baseline" to ratio-computing consumers *)
      (match tg.tg_cycles with
      | Some c -> add " \"baseline_cycles\": %d," c
      | None -> ());
      add " \"wall_seconds\": %s" (json_float tg.tg_wall);
      if tg.tg_overheads <> [] then begin
        add ", \"overheads\": { ";
        add "%s"
          (String.concat ", "
             (List.map
                (fun (k, v) -> Printf.sprintf "%S: %s" (escape k) (json_float v))
                tg.tg_overheads));
        add " }"
      end;
      if tg.tg_counters <> [] then begin
        add ", \"counters\": { ";
        add "%s"
          (String.concat ", "
             (List.map
                (fun (k, v) -> Printf.sprintf "%S: %d" (escape k) v)
                tg.tg_counters));
        add " }"
      end;
      add " }%s\n" (if i = List.length tgs - 1 then "" else ","))
    tgs;
  add "  ],\n";
  (* typed per-target fault records (always present, [] when clean) *)
  add "  \"faults\": [\n";
  let fs = faults t in
  List.iteri
    (fun i f ->
      add "    %s%s\n" (Fault.to_json f)
        (if i = List.length fs - 1 then "" else ","))
    fs;
  add "  ]\n";
  add "}\n";
  Buffer.contents b
