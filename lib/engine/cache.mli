(** Content-hash-keyed artifact cache for pipeline stages.

    Artifacts (compiled MiniC binaries, hardened rewrites, allow-lists)
    are keyed by a [Digest] over their full input content — RELF bytes
    plus rewriter options, marshalled program ASTs, input scripts — so
    a key collision implies identical inputs and therefore an identical
    (deterministic) artifact.

    Two tiers: a mutex-guarded in-memory table, and an optional on-disk
    directory so repeated bench/CLI invocations start warm.  Values are
    stored as [Marshal] blobs (closure-free by construction) and every
    hit unmarshals a fresh copy, so cached artifacts are never shared
    mutable state between worker domains. *)

type stats = {
  mutable hits : int;       (** total hits, [hits_mem + hits_disk] *)
  mutable hits_mem : int;   (** served by the in-memory table (no IO) *)
  mutable hits_disk : int;  (** read from the disk tier (and promoted) *)
  mutable misses : int;
  mutable stores : int;   (** artifacts written to the disk tier *)
  mutable stale : int;    (** artifacts rejected for an old format magic *)
  mutable corrupt : int;  (** artifacts unreadable (bad header/unmarshal) *)
  mutable retries : int;  (** disk writes that failed even after a retry *)
}

type t

val create :
  ?enabled:bool -> ?dir:string -> ?notify:(string -> unit) -> unit -> t
(** [dir]: enable the disk tier in that directory (created on
    demand).  [enabled = false] turns the cache into a pass-through
    that counts every lookup as a miss.  [notify]: called with
    ["hit.mem"], ["hit.disk"], ["miss"], ["store"], ["stale"],
    ["corrupt"], or ["store-failed"] per lookup outcome (outside the
    cache lock, from the calling domain — e.g. to bump lock-free [Obs]
    counters). *)

val enabled : t -> bool
val stats : t -> stats

val key : kind:string -> string list -> string
(** [key ~kind parts] — a stable cache key: [kind] plus the hex digest
    of all [parts].  The kind is part of the key, so artifacts of
    different types can never alias. *)

val find_opt : t -> key:string -> 'a option
(** Tiered lookup (memory, then disk with promotion) without
    computing: [None] counts as a miss.  Stale/corrupt artifacts are
    deleted and reported exactly as under {!memo}.  Always [None] when
    the cache is disabled.  The caller is responsible for pairing a
    [None] with an eventual {!put} of the same type — the multi-key
    protocols (the function-granular harden manifest and its per-part
    artifacts) need lookup and store as separate steps. *)

val put : t -> key:string -> 'a -> unit
(** Store an artifact in both tiers (no-op when disabled).  Same
    atomic-write discipline and degradation as {!memo}'s store. *)

val memo : t -> key:string -> (unit -> 'a) -> 'a
(** [memo t ~key compute]: return the cached artifact for [key], or
    run [compute], store the result in both tiers, and return it.
    Thread-safe; [compute] runs outside the lock (two workers racing
    on the same key may both compute — harmless, as artifacts are
    deterministic functions of the key).

    Fault-tolerant against a damaged disk tier: an artifact carrying
    an older format magic ([stale]) or an unreadable header or blob
    ([corrupt]) is deleted and recomputed (self-healing); disk writes
    are atomic (tmp file + rename) with one bounded retry, and a write
    that still fails degrades that key to the memory tier instead of
    failing the stage.  [memo] itself therefore never raises on cache
    damage — only [compute]'s own exceptions escape. *)
