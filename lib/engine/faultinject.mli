(** Deterministic fault injection for the pipeline.

    A harness [t] is parsed from a SPEC string (the [REDFAT_FAULT]
    environment variable, or [redfat pipeline --inject SPEC]) and
    installed on an engine; the engine calls {!hook} at each
    injection point, and a matching clause raises the canonical typed
    {!Fault.t} for that point.

    {2 SPEC grammar}

    {v
    SPEC   := "none" | clause { "," clause }
    clause := POINT [ ":" SUBSTR ] [ "@" N ] [ "%" PCT [ "~" SEED ] ]
    POINT  := parse | compile | profile | rewrite | harden | cache
            | verify | run | io
    v}

    - [POINT] names the injection point (see {!points});
    - [:SUBSTR] restricts the clause to labels containing [SUBSTR]
      (labels are target names, or [site:<hex>] inside the rewriter);
    - [@N] fires only on the Nth matching hit {e per label} (default:
      every hit) — [cache@1] makes the first cache access of every
      label fault and the retry succeed;
    - [%PCT~SEED] fires on PCT% of hits, decided by a pure hash of
      (seed, point, label, hit index), so the decision is identical
      whatever order labels are processed in — parallel and
      sequential runs inject exactly the same faults.

    All state is per-label hit counters under a mutex; the decision
    for hit [k] of label [l] never depends on other labels, which is
    what keeps [--jobs N] runs deterministic under injection. *)

type t

val none : t
(** The inert harness: every {!hook} call is a no-op. *)

val is_none : t -> bool

val parse : string -> (t, string) result
(** Parse a SPEC ([""] and ["none"] yield {!none}). *)

val of_env : unit -> t
(** The harness described by [REDFAT_FAULT] (unset/empty = {!none}).
    A malformed SPEC raises [Fault] (code [input.script]) rather than
    silently injecting nothing. *)

val to_string : t -> string
(** Canonical SPEC rendering (stable; part of cache keys so injected
    runs never reuse, or pollute, clean-run artifacts). *)

val points : string list
(** The valid injection points. *)

val hook : t -> point:string -> label:string -> unit
(** Raise the canonical typed fault for [point] if a clause fires.
    No-op on {!none}. *)

val hook_fn :
  t -> label:string -> (stage:string -> site:int -> unit) option
(** The rewriter-facing site hook ([Rewrite.rewrite ?fault_hook]):
    [None] when inert, otherwise a function mapping the rewriter's
    per-site callbacks onto the [rewrite] point with labels
    [<label>/site:<hex>]. *)
