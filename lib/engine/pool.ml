(* Work-stealing job pool on OCaml 5 domains.  One batch is in flight
   at a time; task indices live in per-worker deques under a single
   pool mutex (tasks are coarse — whole compile/harden/run jobs — so
   lock traffic is negligible next to task cost).  Results are slotted
   by index, making the output order independent of scheduling. *)

let default_jobs () = Domain.recommended_domain_count ()

type batch = {
  deques : int list ref array; (* per-worker pending task indices *)
  run : int -> unit;           (* never raises *)
  mutable remaining : int;     (* tasks not yet finished *)
  mutable cancelled : bool;    (* a task failed: skip the rest *)
}

type t = {
  n : int; (* worker domains *)
  lock : Mutex.t;
  cond : Condition.t; (* new batch, work taken, batch done, closing *)
  mutable batch : batch option;
  mutable closing : bool;
  mutable domains : unit Domain.t list;
  mutable started : bool;
  obs : Obs.t option; (* task-lifetime spans, recorded in the worker *)
}

(* nested [map] calls from inside a worker run sequentially *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let create ~jobs ?obs () =
  {
    n = max 0 jobs;
    lock = Mutex.create ();
    cond = Condition.create ();
    batch = None;
    closing = false;
    domains = [];
    started = false;
    obs;
  }

let jobs t = max 1 t.n

(* with [t.lock] held: pop from own deque, else steal the back half of
   the fullest other deque *)
let take (b : batch) w : int option =
  if b.cancelled then begin
    (* drain without running: pop anything so [remaining] reaches 0 *)
    let found = ref None in
    Array.iter
      (fun d ->
        match (!found, !d) with
        | None, i :: rest ->
          d := rest;
          found := Some i
        | _ -> ())
      b.deques;
    !found
  end
  else
    match !(b.deques.(w)) with
    | i :: rest ->
      b.deques.(w) := rest;
      Some i
    | [] ->
      let victim = ref (-1) and best = ref 0 in
      Array.iteri
        (fun v d ->
          let l = List.length !d in
          if v <> w && l > !best then begin
            victim := v;
            best := l
          end)
        b.deques;
      if !victim < 0 then None
      else begin
        let d = b.deques.(!victim) in
        let rec split k xs =
          if k = 0 then ([], xs)
          else
            match xs with
            | [] -> ([], [])
            | x :: tl ->
              let kept, stolen = split (k - 1) tl in
              (x :: kept, stolen)
        in
        let kept, stolen = split (!best / 2) !d in
        d := kept;
        match stolen with
        | i :: rest ->
          b.deques.(w) := rest;
          Some i
        | [] -> None
      end

let worker t w () =
  Domain.DLS.set in_worker true;
  Mutex.lock t.lock;
  let rec loop () =
    match t.batch with
    | Some b -> (
      match take b w with
      | Some i ->
        Mutex.unlock t.lock;
        b.run i;
        Mutex.lock t.lock;
        b.remaining <- b.remaining - 1;
        if b.remaining = 0 then begin
          t.batch <- None;
          Condition.broadcast t.cond
        end;
        loop ()
      | None ->
        Condition.wait t.cond t.lock;
        loop ())
    | None ->
      if t.closing then Mutex.unlock t.lock
      else begin
        Condition.wait t.cond t.lock;
        loop ()
      end
  in
  loop ()

let ensure_started t =
  if not t.started then begin
    t.started <- true;
    t.domains <- List.init t.n (fun w -> Domain.spawn (worker t w))
  end

let map t f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if t.n <= 1 || t.closing || Domain.DLS.get in_worker then
    Array.map f tasks
  else begin
    let results = Array.make n None in
    let fail = ref None in
    (* lowest-index failure wins *)
    let workers = t.n in
    let deques =
      Array.init workers (fun w ->
          let lo = w * n / workers and hi = (w + 1) * n / workers in
          ref (List.init (hi - lo) (fun k -> lo + k)))
    in
    let batch_cell = ref None in
    let run_task i =
      let b = Option.get !batch_cell in
      let skip =
        Mutex.lock t.lock;
        let c = b.cancelled in
        Mutex.unlock t.lock;
        c
      in
      if not skip then
        let f =
          match t.obs with
          | None -> f
          | Some obs ->
            (* runs in the worker domain: the span lands in that
               domain's buffer, so each task's lifetime is attributed
               to the domain that executed it *)
            fun x -> Obs.span obs ~cat:"pool" "pool.task" (fun () -> f x)
        in
        match f tasks.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock t.lock;
          b.cancelled <- true;
          (match !fail with
          | Some (j, _, _) when j <= i -> ()
          | _ -> fail := Some (i, e, bt));
          Mutex.unlock t.lock
    in
    let b = { deques; run = run_task; remaining = n; cancelled = false } in
    batch_cell := Some b;
    Mutex.lock t.lock;
    ensure_started t;
    while t.batch <> None do
      Condition.wait t.cond t.lock
    done;
    t.batch <- Some b;
    Condition.broadcast t.cond;
    while b.remaining > 0 do
      Condition.wait t.cond t.lock
    done;
    Mutex.unlock t.lock;
    match !fail with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

(* per-task isolation: each task's exception becomes its own [Error]
   slot instead of cancelling the batch — the fault-tolerant pipeline
   builds per-target records from these *)
let map_result t f xs =
  map_list t (fun x -> try Ok (f x) with e -> Error e) xs

let close t =
  Mutex.lock t.lock;
  while t.batch <> None do
    Condition.wait t.cond t.lock
  done;
  t.closing <- true;
  Condition.broadcast t.cond;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join ds
