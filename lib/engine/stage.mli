(** Typed pipeline stages as first-class values.

    A stage declares its input and output artifact kinds (for
    display/docs) and carries the transformation; [>>>] composes
    stages left to right with the types checked by OCaml, so an
    ill-ordered pipeline (e.g. Run before Harden) does not compile. *)

type ('a, 'b) t

val v : name:string -> input:string -> output:string -> ('a -> 'b) -> ('a, 'b) t

val name : ('a, 'b) t -> string
val input : ('a, 'b) t -> string
val output : ('a, 'b) t -> string

val describe : ('a, 'b) t -> string
(** ["Name : input -> output"], composites show the full chain. *)

val ( >>> ) : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t

val run : ?report:Report.t -> ('a, 'b) t -> 'a -> 'b
(** Apply the stage; with [report], each primitive stage in the chain
    records its own wall time under its name. *)
