type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_start : float;
  sp_dur : float;
  sp_depth : int;
}

type hist = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
}

let num_buckets = 63

type hbuf = {
  mutable hn : int;
  mutable hsum : int;
  mutable hmin : int;
  mutable hmax : int;
  hb : int array;
}

(* One buffer per (collector, domain): mutated only by its owning
   domain, so recording takes no lock.  The registry list is the only
   shared state, appended under [reg] once per domain. *)
type buf = {
  b_tid : int;
  mutable b_spans : span list; (* newest first *)
  b_counters : (string, int ref) Hashtbl.t;
  b_hists : (string, hbuf) Hashtbl.t;
  mutable b_depth : int;
}

type t = {
  t0 : float;
  key : buf option ref Domain.DLS.key;
  reg : Mutex.t;
  mutable bufs : buf list;
}

let now () = Unix.gettimeofday ()

let create () =
  {
    t0 = now ();
    key = Domain.DLS.new_key (fun () -> ref None);
    reg = Mutex.create ();
    bufs = [];
  }

let buf t =
  let slot = Domain.DLS.get t.key in
  match !slot with
  | Some b -> b
  | None ->
    let b =
      {
        b_tid = (Domain.self () :> int);
        b_spans = [];
        b_counters = Hashtbl.create 16;
        b_hists = Hashtbl.create 8;
        b_depth = 0;
      }
    in
    slot := Some b;
    Mutex.lock t.reg;
    t.bufs <- b :: t.bufs;
    Mutex.unlock t.reg;
    b

(* --- recording ------------------------------------------------------- *)

let add_span t ?(cat = "misc") name ~start ~dur =
  let b = buf t in
  b.b_spans <-
    {
      sp_name = name;
      sp_cat = cat;
      sp_tid = b.b_tid;
      sp_start = start -. t.t0;
      sp_dur = dur;
      sp_depth = b.b_depth;
    }
    :: b.b_spans

let span t ?(cat = "misc") name f =
  let b = buf t in
  let depth = b.b_depth in
  b.b_depth <- depth + 1;
  let start = now () in
  Fun.protect
    ~finally:(fun () ->
      let dur = now () -. start in
      b.b_depth <- depth;
      b.b_spans <-
        {
          sp_name = name;
          sp_cat = cat;
          sp_tid = b.b_tid;
          sp_start = start -. t.t0;
          sp_dur = dur;
          sp_depth = depth;
        }
        :: b.b_spans)
    f

let add t ?(n = 1) name =
  let b = buf t in
  match Hashtbl.find_opt b.b_counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace b.b_counters name (ref n)

let bucket_of v = if v <= 0 then 0 else
  let rec go k v = if v = 0 then k else go (k + 1) (v lsr 1) in
  min (go 0 v) (num_buckets - 1)

let bucket_lo idx = if idx = 0 then 0 else 1 lsl (idx - 1)

let observe t name v =
  let b = buf t in
  let h =
    match Hashtbl.find_opt b.b_hists name with
    | Some h -> h
    | None ->
      let h =
        { hn = 0; hsum = 0; hmin = max_int; hmax = min_int;
          hb = Array.make num_buckets 0 }
      in
      Hashtbl.replace b.b_hists name h;
      h
  in
  h.hn <- h.hn + 1;
  h.hsum <- h.hsum + v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v;
  let i = bucket_of v in
  h.hb.(i) <- h.hb.(i) + 1

(* --- merged read side ------------------------------------------------ *)

let all_bufs t =
  Mutex.lock t.reg;
  let bs = t.bufs in
  Mutex.unlock t.reg;
  bs

let counters t =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt merged name with
          | Some m -> m := !m + !r
          | None -> Hashtbl.replace merged name (ref !r))
        b.b_counters)
    (all_bufs t);
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) merged []
  |> List.sort compare

let counter t name =
  List.fold_left
    (fun acc b ->
      match Hashtbl.find_opt b.b_counters name with
      | Some r -> acc + !r
      | None -> acc)
    0 (all_bufs t)

let histograms t =
  let merged = Hashtbl.create 8 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name (h : hbuf) ->
          let m =
            match Hashtbl.find_opt merged name with
            | Some m -> m
            | None ->
              let m =
                { hn = 0; hsum = 0; hmin = max_int; hmax = min_int;
                  hb = Array.make num_buckets 0 }
              in
              Hashtbl.replace merged name m;
              m
          in
          m.hn <- m.hn + h.hn;
          m.hsum <- m.hsum + h.hsum;
          if h.hmin < m.hmin then m.hmin <- h.hmin;
          if h.hmax > m.hmax then m.hmax <- h.hmax;
          Array.iteri (fun i c -> m.hb.(i) <- m.hb.(i) + c) h.hb)
        b.b_hists)
    (all_bufs t);
  Hashtbl.fold
    (fun name m acc ->
      let buckets = ref [] in
      for i = num_buckets - 1 downto 0 do
        if m.hb.(i) > 0 then buckets := (bucket_lo i, m.hb.(i)) :: !buckets
      done;
      ( name,
        { h_count = m.hn; h_sum = m.hsum; h_min = m.hmin; h_max = m.hmax;
          h_buckets = !buckets } )
      :: acc)
    merged []
  |> List.sort compare

let spans t =
  List.concat_map (fun b -> b.b_spans) (all_bufs t)
  |> List.sort (fun a b -> compare (a.sp_start, a.sp_depth) (b.sp_start, b.sp_depth))

let span_summary ?cat t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun sp ->
          if cat = None || cat = Some sp.sp_cat then begin
            match Hashtbl.find_opt tbl sp.sp_name with
            | Some (calls, secs) ->
              Hashtbl.replace tbl sp.sp_name (calls + 1, secs +. sp.sp_dur)
            | None -> Hashtbl.replace tbl sp.sp_name (1, sp.sp_dur)
          end)
        b.b_spans)
    (all_bufs t);
  Hashtbl.fold (fun name (calls, secs) acc -> (name, calls, secs) :: acc) tbl []
  |> List.sort compare

let well_formed t = List.for_all (fun b -> b.b_depth = 0) (all_bufs t)

(* --- exporters ------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us x = x *. 1e6

let to_chrome ?(process_name = "redfat") t =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"traceEvents\":[\n";
  let first = ref true in
  let sep () = if !first then first := false else add ",\n" in
  sep ();
  add
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
     \"args\":{\"name\":\"%s\"}}"
    (escape process_name);
  let tids =
    List.sort_uniq compare (List.map (fun b -> b.b_tid) (all_bufs t))
  in
  List.iter
    (fun tid ->
      sep ();
      add
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
         \"args\":{\"name\":\"domain %d\"}}"
        tid tid)
    tids;
  let last_ts = ref 0.0 in
  List.iter
    (fun sp ->
      let ts = us sp.sp_start and dur = us sp.sp_dur in
      if ts +. dur > !last_ts then last_ts := ts +. dur;
      sep ();
      add
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\
         \"dur\":%.3f,\"pid\":0,\"tid\":%d}"
        (escape sp.sp_name) (escape sp.sp_cat) ts dur sp.sp_tid)
    (spans t);
  List.iter
    (fun (name, v) ->
      sep ();
      add
        "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":0,\"tid\":0,\
         \"args\":{\"value\":%d}}"
        (escape name) !last_ts v)
    (counters t);
  add "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let summary t =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let sums = span_summary t in
  if sums <> [] then begin
    add "spans            calls   seconds\n";
    List.iter
      (fun (name, calls, secs) -> add "%-16s %5d %9.3f\n" name calls secs)
      sums
  end;
  let cs = counters t in
  if cs <> [] then begin
    add "counters\n";
    List.iter (fun (name, v) -> add "  %-24s %12d\n" name v) cs
  end;
  let hs = histograms t in
  if hs <> [] then begin
    add "histograms                 count        sum   min   max      mean\n";
    List.iter
      (fun (name, h) ->
        add "  %-24s %6d %10d %5d %5d %9.1f\n" name h.h_count h.h_sum
          h.h_min h.h_max
          (float_of_int h.h_sum /. float_of_int (max 1 h.h_count)))
      hs
  end;
  Buffer.contents b

(* --- a minimal JSON reader ------------------------------------------- *)

module Json = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  exception Err of string * int

  let parse (s : string) : (v, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Err (msg, !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* enough for our own exports: BMP codepoints as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> fail "bad escape");
          go ())
        | c ->
          Buffer.add_char b c;
          go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Err (msg, p) ->
      Error (Printf.sprintf "JSON error at offset %d: %s" p msg)

  let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
  let to_num = function Num f -> Some f | _ -> None
  let to_str = function Str s -> Some s | _ -> None
  let to_arr = function Arr l -> Some l | _ -> None
end
