(** Structured tracing and metrics for the hardening pipeline.

    A collector [t] owns one lock-free buffer per recording domain
    (reached through [Domain.DLS], created on a domain's first record):
    the hot path — beginning/ending a span, bumping a counter, feeding
    a histogram — touches only the calling domain's own buffer, so no
    lock is taken and no cache line is shared between workers.  The
    read side ({!counters}, {!spans}, {!to_chrome}, ...) merges every
    registered buffer.  Merging is lossless but must happen at a
    quiescent point: after a {!Engine.Pool} batch drains, the pool's
    own mutex hand-off orders all worker writes before the submitter's
    reads, so engine reports and exports are exact.

    Three instrument kinds:
    - {e spans}: nested begin/end intervals ([span] runs a thunk),
      exported as Chrome trace-event "X" slices per domain;
    - {e counters}: monotonic named integers;
    - {e histograms}: log2-bucketed value distributions (e.g. cycles
      per executed check site). *)

type t

val create : unit -> t

(** {2 Recording (hot path, lock-free per domain)} *)

val span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  Nesting is tracked per domain;
    an exception still closes the span.  [cat] groups spans for
    {!span_summary} and the Chrome export (default ["misc"]). *)

val add_span : t -> ?cat:string -> string -> start:float -> dur:float -> unit
(** Record an already-measured interval ([start] in
    [Unix.gettimeofday] seconds, [dur] in seconds). *)

val add : t -> ?n:int -> string -> unit
(** Bump a monotonic counter (default [n = 1]). *)

val observe : t -> string -> int -> unit
(** Feed one value into a log2-bucket histogram. *)

(** {2 Merged read-side views} *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;     (** recording domain id *)
  sp_start : float; (** seconds since the collector was created *)
  sp_dur : float;   (** seconds *)
  sp_depth : int;   (** nesting depth within its domain, 0 = top *)
}

type hist = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
      (** (inclusive lower bound, count) for each non-empty log2
          bucket, ascending *)
}

val counters : t -> (string * int) list
(** All counters, merged across domains, sorted by name. *)

val counter : t -> string -> int
(** One merged counter (0 when never bumped). *)

val histograms : t -> (string * hist) list

val spans : t -> span list
(** All spans, sorted by start time. *)

val span_summary : ?cat:string -> t -> (string * int * float) list
(** [(name, calls, total seconds)] aggregated over spans, sorted by
    name; [cat] restricts to one category (e.g. ["stage"]). *)

val well_formed : t -> bool
(** Every begun span has ended in every domain (no dangling nesting). *)

(** {2 Exporters} *)

val to_chrome : ?process_name:string -> t -> string
(** The collector as Chrome trace-event JSON ([{"traceEvents": ...}]),
    loadable in about:tracing / Perfetto: one complete ("X") event per
    span with the recording domain as its thread, metadata thread
    names, and one counter ("C") sample per merged counter. *)

val summary : t -> string
(** Compact text rendering: span table per category, counters,
    histogram statistics. *)

(** {2 A minimal JSON reader}

    Enough JSON to round-trip our own exports (trace files, bench
    reports) without external dependencies; used by the obs tests and
    [tools/bench_diff]. *)
module Json : sig
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  val parse : string -> (v, string) result
  (** Parse a complete JSON document; the error carries an offset. *)

  val member : string -> v -> v option
  (** Field lookup on [Obj] (None otherwise). *)

  val to_num : v -> float option
  val to_str : v -> string option
  val to_arr : v -> v list option
end
